"""Ablation (DESIGN.md §6): receiver-side fabric vs max-min water-filling.

The paper's concurrency control "considers only the network bandwidth at
the receiver side" (§4.2.3).  This ablation reruns a shuffle-heavy slice of
TPC-H2 under the higher-fidelity max-min fabric (which also models sender
uplinks) and checks that the simplification does not change the outcome
shape: Ursa still completes with near-identical makespan ordering and UE.
"""

from dataclasses import replace

from repro.cluster import Cluster, ClusterSpec
from repro.experiments.common import SCALES
from repro.metrics import compute_metrics
from repro.scheduler import UrsaSystem
from repro.workloads import submit_workload, tpch2_workload

from .conftest import run_once


def _run(sc, fabric):
    cluster_spec = replace(sc.cluster, fabric=fabric)
    cluster = Cluster(cluster_spec)
    system = UrsaSystem(cluster)
    submit_workload(
        system,
        tpch2_workload(
            n_jobs=8,
            scale=sc.workload_scale,
            arrival_interval=sc.arrival_interval,
            max_parallelism=min(sc.max_parallelism, 64),
            partition_mb=max(sc.partition_mb, 24.0),
        ),
    )
    system.run(max_events=sc.max_events)
    assert system.all_done
    return compute_metrics(system)


def test_fabric_model_ablation(benchmark, scale_name):
    sc = SCALES[scale_name]

    def both():
        return _run(sc, "receiver"), _run(sc, "maxmin")

    receiver, maxmin = run_once(benchmark, both)
    print(
        f"\nfabric ablation: receiver mk={receiver.makespan:.1f} "
        f"ue={receiver.ue_cpu:.3f}; maxmin mk={maxmin.makespan:.1f} "
        f"ue={maxmin.ue_cpu:.3f}"
    )
    # sender-side constraints can only slow transfers down a bounded amount
    assert maxmin.makespan >= receiver.makespan * 0.9
    assert maxmin.makespan <= receiver.makespan * 1.6
    # and Ursa's UE story is fabric-independent
    assert receiver.ue_cpu > 0.95
    assert maxmin.ue_cpu > 0.95
