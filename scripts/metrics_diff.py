#!/usr/bin/env python
"""Telemetry metrics regression gate.

Diffs the telemetry summary of a canonical deterministic run (table2 at
the tiny scale, seed 0) against the committed ``BENCH_metrics.json``
baseline, with per-metric tolerances.  The simulation is bit-deterministic,
so the default tolerance is **zero**: any drift in grants, busy-seconds,
utilization or latency quantiles fails CI until the baseline is
regenerated on purpose.  The same run records a lifecycle trace and gates
the critical-path attribution summary (per-unit JCT ledger totals and the
idle-time blame ledger) under ``attribution.*`` keys, plus two open-loop
fig_service units (stable and overloaded) whose SLO-report scalars are
gated under ``service.*`` keys.

Commands::

    # gate: rerun the canonical experiment and diff against the baseline
    PYTHONPATH=src python scripts/metrics_diff.py check

    # diff a pre-collected candidate file instead of rerunning
    PYTHONPATH=src python scripts/metrics_diff.py check --candidate c.json

    # same gate through the vectorized placement engine: it must reproduce
    # the committed scalar baseline exactly (zero tolerance)
    PYTHONPATH=src python scripts/metrics_diff.py check --placement vector

    # regenerate the baseline (after an intentional behavior change);
    # --measure-overhead also times telemetry-off vs telemetry-on via
    # scripts/bench_sim.py's workload and records the overhead
    PYTHONPATH=src python scripts/metrics_diff.py write --measure-overhead

    # dump the candidate metrics without diffing (CI artifact)
    PYTHONPATH=src python scripts/metrics_diff.py dump --out candidate.json

    # validate Prometheus exposition files
    PYTHONPATH=src python scripts/metrics_diff.py validate-prom out/*.prom

Exit status: 0 clean, 1 on any metric outside tolerance (or invalid prom
file), 2 on usage/baseline errors.
"""

from __future__ import annotations

import argparse
import contextlib
import fnmatch
import io
import json
import sys
import time
from pathlib import Path

DEFAULT_BASELINE = "BENCH_metrics.json"

#: the canonical gate run — small enough for CI, covers both Ursa policies
#: and both executor-model baselines; ``service_units`` adds open-loop
#: fig_service units (one stable, one overloaded) whose SLO reports are
#: gated under ``service.<unit>.*``
CANONICAL = {
    "experiments": ["table2"],
    "scale": "tiny",
    "seed": 0,
    "interval": 1.0,
    "service_units": ["poisson-x1.0", "poisson-x2.0"],
}

TOLERANCE_POLICY = [
    "Tolerance policy: the gate metrics come from a bit-deterministic",
    "simulation, so 'default_rel' is 0.0 — metrics must match the baseline",
    "exactly.  'overrides' maps fnmatch patterns over dotted metric names",
    "to relative tolerances for metrics that are allowed to drift.",
    "The 'wall_clock' section is informational only (host-dependent) and",
    "is never gated; regenerate with 'metrics_diff.py write' after an",
    "intentional behavior change and commit the new baseline.",
]


def _flatten(prefix: str, node, out: dict) -> None:
    if isinstance(node, dict):
        for k, v in node.items():
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = node
    # lists (series, buckets) are deliberately skipped: the scalar
    # aggregates already pin them, and flat scalars diff legibly


_GATED_KEYS = (
    "sim_end", "engine_events", "counters", "utilization", "queues",
    "admission_queue.mean", "admission_queue.peak",
    "running_jobs.mean", "running_jobs.peak",
    "alloc_latency", "admission_wait", "jct", "faults",
)


def collect_candidate(spec: dict = CANONICAL, placement: str | None = None) -> dict:
    """Run the canonical experiment with telemetry on; return flat metrics.

    ``placement`` selects the placement engine for the run ("scalar" /
    "vector"); the vector engine is bit-identical to the scalar one, so
    either must reproduce the same committed baseline at zero tolerance.

    The lifecycle recorder runs alongside telemetry, and a small
    critical-path attribution summary (per-unit JCT ledger totals plus the
    idle-time blame totals) is gated under ``attribution.*`` — the ledgers
    are derived from the same deterministic event stream, so they too must
    match the baseline exactly.
    """
    from repro.experiments import fig_service
    from repro.experiments.common import SCALES
    from repro.experiments.registry import run_all
    from repro.obs import attribution as attr_mod
    from repro.obs import recorder as rec_mod
    from repro.obs import telemetry as tel_mod
    from repro.scheduler import vector as vector_mod

    prev_mode = vector_mod.get_default_mode()
    if placement is not None:
        vector_mod.set_default_mode(placement)
    rec = rec_mod.enable()
    tel_mod.enable(interval=spec["interval"])
    service_reports: dict[str, dict] = {}
    try:
        with contextlib.redirect_stdout(io.StringIO()):
            run_all(spec["scale"], only=list(spec["experiments"]), seed=spec["seed"])
            # open-loop service units run outside run_all (they are single
            # units of the fig_service sweep, not the whole experiment);
            # label them the way the runner would so their telemetry and
            # attribution land under fig_service:<key> like everything else
            for key in spec.get("service_units", ()):
                rec.begin_unit(f"fig_service:{key}")
                tel_mod.TELEMETRY.begin_unit(f"fig_service:{key}")
                service_reports[key] = fig_service.run_unit(
                    SCALES[spec["scale"]], key, seed=spec["seed"]
                )
    finally:
        tel = tel_mod.disable()
        rec_mod.disable()
        vector_mod.set_default_mode(prev_mode)
    summary = tel.summary()

    flat: dict[str, float] = {}
    for unit, s in summary["units"].items():
        picked = {}
        for key in _GATED_KEYS:
            node = s
            for part in key.split("."):
                node = node[part]
            picked[key] = node
        _flatten(unit, picked, flat)
    _flatten("totals", summary["totals"], flat)

    attr = attr_mod.attribute(rec.events)
    for unit, u in attr["units"].items():
        picked = {
            "n_jobs": len(u["jobs"]),
            "ledger_totals": u["ledger_totals"],
            "idle": {
                "totals": u["idle"]["totals"],
                "capacity_seconds": u["idle"]["capacity_seconds"],
            },
        }
        _flatten(f"attribution.{unit}", picked, flat)
    for key, report in service_reports.items():
        # SLO report scalars (counts, window percentiles, goodput, shed
        # rate, autoscaler actions) — strings/bools drop out in _flatten
        _flatten(f"service.{key}", report, flat)
    return flat


def measure_overhead(repeats: int = 3, n_jobs: int = 8) -> dict:
    """Telemetry-off vs telemetry-on wall clock on bench_sim's workload.

    Each repeat runs an off/on *pair* back-to-back, alternating which side
    goes first (host load drifts between runs; alternation cancels the
    first-in-pair bias).  The reported overhead is the **median of the
    per-pair on/off ratios** — far more robust against load spikes than
    comparing best-of times collected seconds apart.
    """
    sys.path.insert(0, str(Path(__file__).parent))
    from bench_sim import _run_once

    from repro.obs import telemetry as tel_mod

    def run_off():
        return _run_once(n_jobs, legacy=False)

    def run_on():
        tel_mod.enable()
        try:
            return _run_once(n_jobs, legacy=False)
        finally:
            tel_mod.disable()

    off: list[float] = []
    on: list[float] = []
    ratios: list[float] = []
    metrics_off = metrics_on = None
    for rep in range(repeats):
        if rep % 2 == 0:
            metrics_off, t_off, _ = run_off()
            metrics_on, t_on, _ = run_on()
        else:
            metrics_on, t_on, _ = run_on()
            metrics_off, t_off, _ = run_off()
        off.append(t_off)
        on.append(t_on)
        ratios.append(t_on / t_off)
        print(f"  repeat {rep}: telemetry-off {t_off:6.2f} s   "
              f"telemetry-on {t_on:6.2f} s   ratio {t_on / t_off:.3f}",
              file=sys.stderr)
    ratios.sort()
    mid = len(ratios) // 2
    median_ratio = (ratios[mid] if len(ratios) % 2
                    else (ratios[mid - 1] + ratios[mid]) / 2.0)
    return {
        "workload": f"bench_sim synthetic setting-1, {n_jobs} jobs, optimized tick",
        "method": "median of per-pair on/off ratios, alternating pair order",
        "repeats": repeats,
        "telemetry_off_s": [round(t, 2) for t in off],
        "telemetry_on_s": [round(t, 2) for t in on],
        "telemetry_off_best_s": round(min(off), 2),
        "telemetry_on_best_s": round(min(on), 2),
        "overhead_pct": round((median_ratio - 1.0) * 100.0, 1),
        "metrics_bit_identical": metrics_off == metrics_on,
    }


def _tolerance_for(name: str, tolerances: dict) -> float | None:
    """None = informational (never gated)."""
    for pattern, tol in tolerances.get("overrides", {}).items():
        if fnmatch.fnmatch(name, pattern):
            return tol
    return tolerances.get("default_rel", 0.0)


def diff(baseline: dict, candidate: dict) -> list[str]:
    """Compare flat candidate metrics to the baseline; return failures."""
    base = baseline["metrics"]
    tolerances = baseline.get("tolerances", {})
    failures: list[str] = []
    for name in sorted(base):
        tol = _tolerance_for(name, tolerances)
        if tol is None:
            continue
        if name not in candidate:
            failures.append(f"MISSING  {name} (baseline {base[name]!r})")
            continue
        a, b = base[name], candidate[name]
        if a == b:
            continue
        rel = abs(b - a) / max(abs(a), 1e-12)
        if rel > tol:
            failures.append(
                f"DRIFT    {name}: baseline {a!r} -> candidate {b!r} "
                f"(rel {rel:.3e} > tol {tol:g})"
            )
    for name in sorted(set(candidate) - set(base)):
        if _tolerance_for(name, tolerances) is not None:
            failures.append(f"NEW      {name} = {candidate[name]!r} (not in baseline)")
    return failures


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _load_candidate(path: str) -> dict:
    doc = _load(path)
    # accept either a flat metrics dict or a full baseline-shaped file
    return doc["metrics"] if "metrics" in doc else doc


def cmd_check(args) -> int:
    try:
        baseline = _load(args.baseline)
    except FileNotFoundError:
        print(f"metrics_diff: baseline {args.baseline} not found; "
              f"generate it with 'metrics_diff.py write'", file=sys.stderr)
        return 2
    if args.candidate:
        candidate = _load_candidate(args.candidate)
    else:
        mode = f", placement={args.placement}" if args.placement else ""
        print(f"metrics_diff: collecting candidate from canonical run "
              f"{baseline.get('canonical', CANONICAL)}{mode}", file=sys.stderr)
        candidate = collect_candidate(
            baseline.get("canonical", CANONICAL), placement=args.placement
        )
    failures = diff(baseline, candidate)
    if failures:
        print(f"metrics_diff: {len(failures)} metric(s) outside tolerance "
              f"vs {args.baseline}:")
        for line in failures:
            print(f"  {line}")
        return 1
    n = len(baseline["metrics"])
    print(f"metrics_diff: OK — {n} baseline metrics matched within tolerance")
    return 0


def cmd_write(args) -> int:
    print("metrics_diff: collecting canonical telemetry metrics...", file=sys.stderr)
    start = time.perf_counter()
    metrics = collect_candidate(CANONICAL)
    elapsed = time.perf_counter() - start
    doc = {
        "_tolerance_policy": TOLERANCE_POLICY,
        "canonical": CANONICAL,
        "tolerances": {"default_rel": 0.0, "overrides": {}},
        "metrics": metrics,
        "collect_seconds": round(elapsed, 2),
    }
    if args.measure_overhead:
        print("metrics_diff: measuring telemetry wall-clock overhead...",
              file=sys.stderr)
        doc["wall_clock"] = measure_overhead(args.repeats, args.n_jobs)
    Path(args.baseline).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"metrics_diff: wrote {len(metrics)} metrics to {args.baseline}")
    if "wall_clock" in doc:
        print(f"  telemetry overhead: {doc['wall_clock']['overhead_pct']}% "
              f"(identical metrics: {doc['wall_clock']['metrics_bit_identical']})")
    return 0


def cmd_dump(args) -> int:
    metrics = collect_candidate(CANONICAL, placement=args.placement)
    text = json.dumps(metrics, indent=1, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"metrics_diff: wrote {len(metrics)} metrics to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_validate_prom(args) -> int:
    from repro.obs.promexport import validate_prom

    rc = 0
    for path in args.files:
        errs = validate_prom(Path(path).read_text())
        if errs:
            rc = 1
            print(f"{path}: {len(errs)} error(s)")
            for e in errs[:20]:
                print(f"  {e}")
        else:
            print(f"{path}: OK")
    return rc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="diff candidate metrics against the baseline")
    p.add_argument("--baseline", default=DEFAULT_BASELINE)
    p.add_argument("--candidate", default=None,
                   help="pre-collected candidate JSON (default: rerun the "
                        "canonical experiment)")
    p.add_argument("--placement", default=None, choices=("scalar", "vector"),
                   help="placement engine for the candidate run (vector must "
                        "match the scalar baseline exactly)")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("write", help="regenerate the baseline")
    p.add_argument("--baseline", default=DEFAULT_BASELINE)
    p.add_argument("--measure-overhead", action="store_true",
                   help="also time telemetry-off vs telemetry-on (bench_sim "
                        "workload) and record the overhead")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--n-jobs", type=int, default=8)
    p.set_defaults(func=cmd_write)

    p = sub.add_parser("dump", help="print/write candidate metrics, no diff")
    p.add_argument("--out", default=None)
    p.add_argument("--placement", default=None, choices=("scalar", "vector"))
    p.set_defaults(func=cmd_dump)

    p = sub.add_parser("validate-prom", help="validate exposition-format files")
    p.add_argument("files", nargs="+")
    p.set_defaults(func=cmd_validate_prom)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
