#!/usr/bin/env python
"""Why-slow analysis of a JSONL lifecycle trace — no simulation rerun.

Reads a ``trace.jsonl`` produced by ``python -m repro.experiments --trace``
(or ``--analyze``) and derives the critical-path attribution: per-job JCT
ledgers (admission wait, queue wait, placement delay, contention, transfer,
compute, fault recovery — summing exactly to each job's completion time)
and the per-worker idle-time blame ledger (every idle slot-second classified
as no-work / blocked-by-policy / admission-gated / fault downtime)::

    PYTHONPATH=src python scripts/trace_analyze.py traces/trace.jsonl
    PYTHONPATH=src python scripts/trace_analyze.py traces/trace.jsonl --top 5
    PYTHONPATH=src python scripts/trace_analyze.py traces/trace.jsonl --format csv
    PYTHONPATH=src python scripts/trace_analyze.py traces/trace.jsonl --format json
    PYTHONPATH=src python scripts/trace_analyze.py traces/trace.jsonl --out attribution.json
    PYTHONPATH=src python scripts/trace_analyze.py traces/trace.jsonl --check

Default output: the top-N slowest jobs with their ledgers, then one
idle-blame table per unit (policy).  ``--format csv`` emits two
machine-readable sections through ``csv.writer`` (safe quoting for unit
labels containing commas); ``--format json`` dumps the canonical
attribution document to stdout.  ``--out`` writes that document to a file.

``--check`` (also implied by every run) validates the sum-to-JCT identity
for every job at 1e-9 relative tolerance and the non-negativity of the
idle ledger, and exits non-zero on any violation — the CI analyze-smoke
job gates on this.
"""

from __future__ import annotations

import argparse
import csv
import sys


def _fmt_ledger(ledger: dict, min_s: float = 1e-3) -> str:
    from repro.obs.attribution import CATEGORIES

    parts = [
        f"{cat} {ledger[cat]:.2f}s" for cat in CATEGORIES if ledger[cat] >= min_s
    ]
    return "  ".join(parts) if parts else "(all phases < 1ms)"


def _print_tables(result: dict, top: int) -> None:
    from repro.obs.attribution import IDLE_CAUSES, RTYPES, top_jobs

    rows = top_jobs(result, n=top)
    print(f"top {len(rows)} slowest job(s) by JCT")
    for unit_label, jid, entry in rows:
        name = f" ({entry['name']})" if entry.get("name") else ""
        flag = "  FAILED" if entry["failed"] else ""
        print(f"\n  {unit_label}  job {jid}{name}  jct {entry['jct']:.2f}s{flag}")
        print(f"    {_fmt_ledger(entry['ledger'])}")

    for unit_label in sorted(result["units"]):
        unit = result["units"][unit_label]
        idle = unit["idle"]
        if not idle["per_worker"]:
            continue
        print(f"\nidle-time blame — {unit_label} "
              f"(t_end {idle['end_t']:.1f}s)")
        print(f"  {'resource':>8s}  " + "  ".join(
            f"{c:>16s}" for c in IDLE_CAUSES
        ) + f"  {'capacity_s':>12s}")
        for rtype in RTYPES:
            causes = idle["totals"][rtype]
            cap = idle["capacity_seconds"][rtype]
            print(f"  {rtype:>8s}  " + "  ".join(
                f"{causes[c]:>16.1f}" for c in IDLE_CAUSES
            ) + f"  {cap:>12.1f}")


def _print_csv(result: dict, top: int, out) -> None:
    """Two CSV sections: job ledgers, then the idle blame table.

    Every cell goes through ``csv.writer`` — unit labels regularly contain
    commas (tuple unit keys like ``fig8:(2, 0.5)``), so manual joins would
    produce corrupt CSV.
    """
    from repro.obs.attribution import CATEGORIES, IDLE_CAUSES, RTYPES, top_jobs

    writer = csv.writer(out, lineterminator="\n")
    # "job_failed" (the flag) vs the "failed" ledger category
    writer.writerow(
        ["section", "unit", "job", "name", "jct", "job_failed"] + list(CATEGORIES)
    )
    for unit_label, jid, entry in top_jobs(result, n=top):
        writer.writerow(
            ["job", unit_label, jid, entry.get("name") or "",
             entry["jct"], entry["failed"]]
            + [entry["ledger"][c] for c in CATEGORIES]
        )
    writer.writerow([])
    writer.writerow(["section", "unit", "resource", "capacity_seconds"]
                    + list(IDLE_CAUSES))
    for unit_label in sorted(result["units"]):
        idle = result["units"][unit_label]["idle"]
        if not idle["per_worker"]:
            continue
        for rtype in RTYPES:
            writer.writerow(
                ["idle", unit_label, rtype, idle["capacity_seconds"][rtype]]
                + [idle["totals"][rtype][c] for c in IDLE_CAUSES]
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", metavar="TRACE_JSONL",
                        help="JSONL lifecycle trace to analyze")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="show the N slowest jobs (default: 10)")
    parser.add_argument("--format", default="table",
                        choices=("table", "csv", "json"),
                        help="output format (default: table)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the canonical attribution.json here")
    parser.add_argument("--check", action="store_true",
                        help="validate only (no tables): sum-to-JCT identity "
                             "and idle-ledger sanity; exit non-zero on error")
    args = parser.parse_args(argv)

    from repro.obs import read_jsonl
    from repro.obs.attribution import attribute, validate, write_attribution

    events = read_jsonl(args.trace)
    if not events:
        print(f"{args.trace}: empty trace", file=sys.stderr)
        return 1
    result = attribute(events)

    errors = validate(result)
    if errors:
        print(f"{args.trace}: ATTRIBUTION INVALID ({len(errors)} error(s))",
              file=sys.stderr)
        for err in errors[:20]:
            print(f"  {err}", file=sys.stderr)
        return 1

    if args.out is not None:
        write_attribution(result, args.out)
        print(f"[analyze] wrote {args.out}", file=sys.stderr)

    if args.check:
        n_jobs = sum(len(u["jobs"]) for u in result["units"].values())
        print(f"{args.trace}: OK ({n_jobs} job ledger(s), "
              f"{len(result['units'])} unit(s), sum-to-JCT identity holds)")
        return 0

    if args.format == "json":
        from repro.obs.attribution import render_json

        sys.stdout.write(render_json(result))
    elif args.format == "csv":
        _print_csv(result, args.top, sys.stdout)
    else:
        _print_tables(result, args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
