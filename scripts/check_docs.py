#!/usr/bin/env python
"""Documentation checks: links, doctests, and doc/implementation drift.

Five passes, all offline:

1. **Link check** — every relative link / image target in the repo's
   markdown docs must exist on disk.  ``http(s):``/``mailto:`` URLs and
   pure ``#anchor`` fragments are skipped (no network in CI), but an
   anchorless path's file part is still checked (``DESIGN.md#9-...`` →
   ``DESIGN.md``).
2. **Doctest pass** — every module under ``src/repro`` whose source
   contains a ``>>>`` prompt is imported and run through ``doctest``;
   a module advertising examples that no longer execute fails the build.
3. **Markdown doctests** — ``>>>`` examples embedded in the checked
   markdown files (e.g. docs/OPERATIONS.md) are executed the same way,
   so operator-guide snippets cannot rot.
4. **CLI flag cross-check** — every ``--flag`` that
   ``python -m repro.experiments --help`` defines (introspected from
   ``build_parser()``) must appear in at least one checked doc, and every
   ``--flag`` the docs mention for that CLI must still exist.
5. **Makefile target cross-check** — every target in the Makefile must be
   mentioned as ``make <target>`` in at least one checked doc.

Exit status is non-zero on any failure, so CI gates on
``python scripts/check_docs.py`` (``make check-docs``).
"""

from __future__ import annotations

import argparse
import doctest
import importlib
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: markdown files whose links we guarantee (docs/ is globbed in addition)
DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md"]

#: inline links/images: [text](target) — target up to the first unescaped ')'
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: schemes that point off-disk and are deliberately not fetched
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_doc_files() -> list[Path]:
    files = [REPO / name for name in DOC_FILES if (REPO / name).exists()]
    files.extend(sorted((REPO / "docs").glob("**/*.md")))
    return files


def check_links(files: list[Path]) -> list[str]:
    errors = []
    for md in files:
        text = md.read_text(encoding="utf-8")
        # links inside fenced code blocks are illustrative, not navigable
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{md.relative_to(REPO)}: broken link -> {target}")
    return errors


def iter_doctest_modules() -> list[str]:
    src = REPO / "src"
    names = []
    for py in sorted((src / "repro").rglob("*.py")):
        if ">>>" in py.read_text(encoding="utf-8"):
            rel = py.relative_to(src).with_suffix("")
            parts = list(rel.parts)
            if parts[-1] == "__init__":
                parts.pop()
            names.append(".".join(parts))
    return names


def run_doctests(module_names: list[str]) -> list[str]:
    errors = []
    for name in module_names:
        module = importlib.import_module(name)
        result = doctest.testmod(module)
        if result.attempted == 0:
            errors.append(f"{name}: contains '>>>' but doctest found no examples")
        elif result.failed:
            errors.append(f"{name}: {result.failed}/{result.attempted} doctest(s) failed")
        else:
            print(f"[doctest] {name}: {result.attempted} example(s) OK")
    return errors


def run_markdown_doctests(files: list[Path]) -> list[str]:
    """Execute ``>>>`` examples embedded in the checked markdown files.

    :class:`doctest.DocTestParser` skips the prose between examples, so
    markdown needs no special fencing — any ``>>>`` block is run with a
    fresh namespace per file and its output compared exactly.
    """
    parser = doctest.DocTestParser()
    errors = []
    for md in files:
        text = md.read_text(encoding="utf-8")
        if ">>>" not in text:
            continue
        name = str(md.relative_to(REPO))
        test = parser.get_doctest(text, {}, name, str(md), 0)
        runner = doctest.DocTestRunner(verbose=False)
        result = runner.run(test, out=lambda s: None)
        if result.failed:
            errors.append(f"{name}: {result.failed}/{result.attempted} "
                          f"markdown doctest(s) failed (run with doctest "
                          f"verbose for details)")
        else:
            print(f"[doctest] {name}: {result.attempted} example(s) OK")
    return errors


#: --flags mentioned in docs near the experiments CLI are validated against
#: build_parser(); matches e.g. "--service-out" but not "--" em-dash runs
_FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]+\b")

#: flags that belong to other CLIs the docs also mention (scripts/*.py,
#: pytest, pip, git...) — not part of the experiments CLI surface
_FOREIGN_FLAGS = {
    "--baseline", "--candidate", "--measure-overhead", "--repeats",
    "--n-jobs", "--out", "--skip-doctests", "--jobs", "--setting",
    "--legacy", "--no-header", "--cache-clear", "--cov", "--help",
    "--workers", "--events", "--check", "--runs", "--warmup",
    "--benchmark-only", "--format", "--top", "--validate-chrome",
}


def cli_flags() -> list[str]:
    from repro.experiments.__main__ import build_parser

    flags = []
    for action in build_parser()._actions:
        flags.extend(opt for opt in action.option_strings if opt.startswith("--"))
    return flags


def check_cli_flags(corpus: str) -> list[str]:
    """Two-way drift check between the experiments CLI and the docs."""
    defined = set(cli_flags())
    errors = [
        f"CLI flag {flag} (python -m repro.experiments) is documented "
        f"nowhere in the checked markdown files"
        for flag in sorted(defined)
        if flag != "--help" and flag not in corpus
    ]
    mentioned = set(_FLAG_RE.findall(corpus))
    errors.extend(
        f"docs mention unknown flag {flag}: not defined by "
        f"python -m repro.experiments (stale doc or typo?)"
        for flag in sorted(mentioned - defined - _FOREIGN_FLAGS)
    )
    return errors


def makefile_targets() -> list[str]:
    targets = []
    for line in (REPO / "Makefile").read_text(encoding="utf-8").splitlines():
        m = re.match(r"^([A-Za-z0-9][A-Za-z0-9_-]*):", line)
        if m:
            targets.append(m.group(1))
    return targets


def check_make_targets(corpus: str) -> list[str]:
    return [
        f"Makefile target '{t}' is not mentioned as 'make {t}' in any "
        f"checked markdown file"
        for t in makefile_targets()
        if f"make {t}" not in corpus
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--skip-doctests", action="store_true",
                        help="only check markdown links and doc drift")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    files = iter_doc_files()
    errors = check_links(files)
    print(f"[links] checked {len(files)} markdown file(s)")

    # drift checks read the raw text: flags and targets normally live in
    # fenced example blocks, which the link pass strips away
    corpus = "\n".join(f.read_text(encoding="utf-8") for f in files)
    flag_errors = check_cli_flags(corpus)
    target_errors = check_make_targets(corpus)
    print(f"[cli] {len(cli_flags())} flag(s) cross-checked "
          f"({len(flag_errors)} problem(s))")
    print(f"[make] {len(makefile_targets())} target(s) cross-checked "
          f"({len(target_errors)} problem(s))")
    errors.extend(flag_errors)
    errors.extend(target_errors)

    if not args.skip_doctests:
        errors.extend(run_doctests(iter_doctest_modules()))
        errors.extend(run_markdown_doctests(files))

    for err in errors:
        print(f"ERROR: {err}", file=sys.stderr)
    if not errors:
        print("docs OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
