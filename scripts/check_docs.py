#!/usr/bin/env python
"""Documentation checks: local markdown links + embedded doctests.

Two passes, both offline:

1. **Link check** — every relative link / image target in the repo's
   markdown docs must exist on disk.  ``http(s):``/``mailto:`` URLs and
   pure ``#anchor`` fragments are skipped (no network in CI), but an
   anchorless path's file part is still checked (``DESIGN.md#9-...`` →
   ``DESIGN.md``).
2. **Doctest pass** — every module under ``src/repro`` whose source
   contains a ``>>>`` prompt is imported and run through ``doctest``;
   a module advertising examples that no longer execute fails the build.

Exit status is non-zero on any broken link or failing doctest, so CI can
gate on ``python scripts/check_docs.py``.
"""

from __future__ import annotations

import argparse
import doctest
import importlib
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: markdown files whose links we guarantee (docs/ is globbed in addition)
DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md"]

#: inline links/images: [text](target) — target up to the first unescaped ')'
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: schemes that point off-disk and are deliberately not fetched
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_doc_files() -> list[Path]:
    files = [REPO / name for name in DOC_FILES if (REPO / name).exists()]
    files.extend(sorted((REPO / "docs").glob("**/*.md")))
    return files


def check_links(files: list[Path]) -> list[str]:
    errors = []
    for md in files:
        text = md.read_text(encoding="utf-8")
        # links inside fenced code blocks are illustrative, not navigable
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{md.relative_to(REPO)}: broken link -> {target}")
    return errors


def iter_doctest_modules() -> list[str]:
    src = REPO / "src"
    names = []
    for py in sorted((src / "repro").rglob("*.py")):
        if ">>>" in py.read_text(encoding="utf-8"):
            rel = py.relative_to(src).with_suffix("")
            parts = list(rel.parts)
            if parts[-1] == "__init__":
                parts.pop()
            names.append(".".join(parts))
    return names


def run_doctests(module_names: list[str]) -> list[str]:
    errors = []
    for name in module_names:
        module = importlib.import_module(name)
        result = doctest.testmod(module)
        if result.attempted == 0:
            errors.append(f"{name}: contains '>>>' but doctest found no examples")
        elif result.failed:
            errors.append(f"{name}: {result.failed}/{result.attempted} doctest(s) failed")
        else:
            print(f"[doctest] {name}: {result.attempted} example(s) OK")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--skip-doctests", action="store_true",
                        help="only check markdown links")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    files = iter_doc_files()
    errors = check_links(files)
    print(f"[links] checked {len(files)} markdown file(s)")

    if not args.skip_doctests:
        errors.extend(run_doctests(iter_doctest_modules()))

    for err in errors:
        print(f"ERROR: {err}", file=sys.stderr)
    if not errors:
        print("docs OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
