#!/usr/bin/env python
"""Measure single-simulation wall time: optimized tick vs the legacy tick.

One fixed, mid-size synthetic workload (setting-1 Type-1 jobs on the bench
cluster) is run to completion through ``UrsaSystem`` twice per repeat —
once with the PR-3 fast-path scheduler and once with ``legacy_tick=True``
(the frozen pre-change placement + forced per-tick resort + unmemoized
SRJF).  The best-of-N wall times give the speedup; the run also asserts
that both modes produce pickle-identical metrics, so the speedup is never
bought with a behavior change.

Writes a JSON baseline (default ``BENCH_sim.json``)::

    PYTHONPATH=src python scripts/bench_sim.py
    PYTHONPATH=src python scripts/bench_sim.py --repeats 5 --n-jobs 10
"""

from __future__ import annotations

import argparse
import json
import pickle
import platform
import sys
import time
from pathlib import Path


def _run_once(
    n_jobs: int, legacy: bool, profiled: bool = False, traced: bool = False,
    telemetry: bool = False, placement: str | None = None,
) -> tuple[bytes, float, dict]:
    """One full simulation; returns (metrics bytes, wall seconds, profile).

    Timed repeats run *unprofiled*: the legacy placement carries no counter
    branches, so enabling the profiler would slow only the optimized side
    and understate the speedup.  The per-phase counters in the baseline
    come from one extra untimed profiled run.  ``traced=True`` records the
    monotask lifecycle through ``repro.obs`` (also untimed, for the
    tracing-is-pure-observation identity check and ``--trace-out``);
    ``telemetry=True`` likewise enables the cluster telemetry collector
    (unless the caller already enabled one, as the overhead timing in
    ``scripts/metrics_diff.py`` does around the *timed* repeats).
    """
    from repro.cluster import Cluster
    from repro.experiments.common import SCALES
    from repro.experiments.fig8_fig9_fig10_synthetic import params_for
    from repro.metrics import compute_metrics
    from repro.obs import recorder as obs_recorder
    from repro.obs import telemetry as obs_telemetry
    from repro.perf import profile as tick_profile
    from repro.scheduler import UrsaConfig, UrsaSystem
    from repro.workloads import submit_workload, synthetic_setting1

    rec = obs_recorder.enable() if traced else None
    if rec is not None:
        rec.begin_unit("bench_sim")
    tel = obs_telemetry.enable() if telemetry else None
    if tel is not None:
        tel.begin_unit("bench_sim")
    sc = SCALES["bench"]
    cluster = Cluster(sc.cluster)
    system = UrsaSystem(
        cluster,
        UrsaConfig(
            policy="ejf", policy_weight=5.0, legacy_tick=legacy,
            placement_mode=placement,
        ),
    )
    workload = synthetic_setting1(params_for(sc), n_jobs=n_jobs)
    submit_workload(system, workload, seed=1)

    prof = tick_profile.enable() if profiled else None
    try:
        start = time.perf_counter()
        system.run(max_events=sc.max_events)
        elapsed = time.perf_counter() - start
    finally:
        if profiled:
            tick_profile.disable()
        if traced:
            obs_recorder.disable()
        if telemetry:
            obs_telemetry.disable()
    if not system.all_done:
        raise RuntimeError("bench_sim workload did not finish")
    metrics = pickle.dumps(compute_metrics(system))
    extra = prof.as_dict() if prof is not None else {}
    if rec is not None:
        extra["recorder"] = rec
    if tel is not None:
        extra["telemetry"] = tel
    return metrics, elapsed, extra


_PHASES = ("refresh", "resort", "ready", "place", "dispatch")


def _phase_breakdown(prof: dict) -> dict:
    """Per-phase share of the scheduling tick from a profiled run's dict."""
    total = sum(prof.get(f"{name}_ns", 0) for name in _PHASES) or 1
    return {
        name: {
            "ms": round(prof.get(f"{name}_ns", 0) / 1e6, 1),
            "share": round(prof.get(f"{name}_ns", 0) / total, 4),
        }
        for name in _PHASES
    }


def _print_breakdown_table(by_mode: dict) -> None:
    """ASCII per-phase table: one column pair (ms, % of tick) per engine."""
    modes = list(by_mode)
    header = f"  {'phase':<10}" + "".join(
        f" {mode + ' ms':>12} {'%tick':>7}" for mode in modes
    )
    print(header, file=sys.stderr)
    for name in _PHASES:
        row = f"  {name:<10}"
        for mode in modes:
            cell = by_mode[mode][name]
            row += f" {cell['ms']:>12.1f} {100 * cell['share']:>6.1f}%"
        print(row, file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N (default 3)")
    parser.add_argument("--n-jobs", type=int, default=8, help="workload size (default 8)")
    parser.add_argument("--out", default="BENCH_sim.json")
    parser.add_argument(
        "--skip-vector", action="store_true",
        help="skip the vector-engine timed repeats and comparison row",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="also run once (untimed) with lifecycle tracing enabled and "
             "write trace.jsonl / trace.json under DIR; the traced run is "
             "folded into the metrics-identity check",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="also run once (untimed) with the cluster telemetry collector "
             "enabled and fold that run into the metrics-identity check "
             "(wall-clock overhead is measured separately by "
             "scripts/metrics_diff.py write --measure-overhead)",
    )
    args = parser.parse_args(argv)

    print(f"bench_sim: synthetic setting-1, n_jobs={args.n_jobs}, "
          f"best of {args.repeats}", file=sys.stderr)

    optimized: list[float] = []
    legacy: list[float] = []
    vector: list[float] = []
    metrics_opt = metrics_leg = metrics_vec = None
    for rep in range(args.repeats):
        metrics_opt, t_opt, _ = _run_once(args.n_jobs, legacy=False)
        metrics_leg, t_leg, _ = _run_once(args.n_jobs, legacy=True)
        line = f"  repeat {rep}: optimized {t_opt:6.2f} s   legacy {t_leg:6.2f} s"
        if not args.skip_vector:
            metrics_vec, t_vec, _ = _run_once(
                args.n_jobs, legacy=False, placement="vector"
            )
            vector.append(t_vec)
            line += f"   vector {t_vec:6.2f} s"
        optimized.append(t_opt)
        legacy.append(t_leg)
        print(line, file=sys.stderr)

    # one extra (untimed) profiled run supplies the per-phase counters and
    # doubles as the profiled-run-is-identical check
    metrics_profiled, _, prof_opt = _run_once(args.n_jobs, legacy=False, profiled=True)
    identical = metrics_opt == metrics_leg == metrics_profiled

    prof_vec = None
    if not args.skip_vector:
        # profiled vector run: supplies the place-phase comparison and the
        # vector counters, and joins the identity check — the vector engine
        # must reproduce the scalar metrics bit-for-bit
        metrics_vec_prof, _, prof_vec = _run_once(
            args.n_jobs, legacy=False, profiled=True, placement="vector"
        )
        identical = identical and metrics_opt == metrics_vec == metrics_vec_prof

    if args.trace_out is not None:
        # one more untimed run with the lifecycle recorder on: tracing is
        # pure observation, so its metrics must join the identity check
        from repro.obs import write_trace_files

        metrics_traced, _, extra = _run_once(args.n_jobs, legacy=False, traced=True)
        identical = identical and metrics_opt == metrics_traced
        rec = extra["recorder"]
        paths = write_trace_files(rec, args.trace_out)
        print(f"  traced run: {len(rec.events)} events -> {paths['chrome']}",
              file=sys.stderr)

    if args.telemetry:
        # telemetry is a pure observer too: its run joins the identity check
        metrics_tel, _, extra = _run_once(args.n_jobs, legacy=False, telemetry=True)
        identical = identical and metrics_opt == metrics_tel
        tel = extra["telemetry"]
        totals = tel.summary()["totals"]
        print(f"  telemetry run: {totals['grants']:.0f} grants / "
              f"{totals['releases']:.0f} releases recorded", file=sys.stderr)
    best_opt, best_leg = min(optimized), min(legacy)
    speedup = best_leg / best_opt if best_opt else None

    breakdown = {"scalar": _phase_breakdown(prof_opt)}
    if prof_vec is not None:
        breakdown["vector"] = _phase_breakdown(prof_vec)
    print("per-phase breakdown (profiled runs):", file=sys.stderr)
    _print_breakdown_table(breakdown)

    baseline = {
        "benchmark": "single-simulation wall time (optimized tick vs legacy tick)",
        "workload": f"synthetic setting-1, {args.n_jobs} Type-1 jobs, bench cluster, ejf",
        "repeats": args.repeats,
        "profile_optimized": prof_opt,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "optimized_s": [round(t, 2) for t in optimized],
        "legacy_s": [round(t, 2) for t in legacy],
        "optimized_best_s": round(best_opt, 2),
        "legacy_best_s": round(best_leg, 2),
        "speedup": round(speedup, 2) if speedup else None,
        "metrics_bit_identical": identical,
        "phase_breakdown": breakdown,
    }
    if prof_vec is not None:
        best_vec = min(vector)
        place_speedup = (
            prof_opt["place_ns"] / prof_vec["place_ns"]
            if prof_vec.get("place_ns") else None
        )
        baseline["profile_vector"] = prof_vec
        baseline["placement_comparison"] = {
            "scalar_best_s": round(best_opt, 2),
            "vector_best_s": round(best_vec, 2),
            "vector_s": [round(t, 2) for t in vector],
            "wall_speedup": round(best_opt / best_vec, 2) if best_vec else None,
            "place_ns_scalar": prof_opt["place_ns"],
            "place_ns_vector": prof_vec["place_ns"],
            "place_speedup": round(place_speedup, 2) if place_speedup else None,
            "vector_rows": prof_vec["vector_rows"],
            "vector_fallbacks": prof_vec["vector_fallbacks"],
            "vector_rebuilds": prof_vec["vector_rebuilds"],
            "tasks_per_row": round(
                prof_vec["tasks_scored"] / max(prof_vec["vector_rows"], 1), 1
            ),
        }
        print(
            f"  scalar vs vector: place "
            f"{prof_opt['place_ns'] / 1e9:.2f}s -> {prof_vec['place_ns'] / 1e9:.2f}s "
            f"({place_speedup:.2f}x), wall best {best_opt:.2f}s -> {best_vec:.2f}s",
            file=sys.stderr,
        )
    Path(args.out).write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"speedup {speedup:.2f}x (identical metrics: {identical}); "
          f"wrote {args.out}", file=sys.stderr)
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
