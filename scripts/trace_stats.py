#!/usr/bin/env python
"""Summarize a JSONL lifecycle trace without rerunning any simulation.

Reads a ``trace.jsonl`` produced by ``python -m repro.experiments --trace``
(or ``scripts/bench_sim.py --trace-out``) and prints the allocation-latency
and queue-wait percentile tables — the paper's Obj-4 evidence — derived
purely from the recorded events::

    PYTHONPATH=src python scripts/trace_stats.py traces/trace.jsonl
    PYTHONPATH=src python scripts/trace_stats.py traces/trace.jsonl --per-unit
    PYTHONPATH=src python scripts/trace_stats.py traces/trace.jsonl --format csv
    PYTHONPATH=src python scripts/trace_stats.py traces/trace.jsonl --format csv --events
    PYTHONPATH=src python scripts/trace_stats.py --validate-chrome traces/trace.json

``--format csv`` writes the same rows as machine-readable CSV (one extra
leading ``unit`` column; the header row is always emitted) for spreadsheet
or pandas post-processing.  ``--events`` dumps the raw events instead
(``unit,t,kind,payload``); the payload column is the event's remaining
fields as JSON, which always contains commas — every cell goes through
``csv.writer`` so quoting stays correct for any payload content.

``--validate-chrome`` checks a Chrome Trace JSON file against the schema
subset the exporter emits (the CI smoke job gates on this) and exits
non-zero on the first invalid document.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from collections import Counter
from pathlib import Path


def _write_csv(per_unit_stats: dict, out) -> None:
    """Emit latency rows as CSV, one leading ``unit`` column per row."""
    from repro.metrics.report import latency_rows

    writer = csv.writer(out, lineterminator="\n")
    header_written = False
    for label, stats in per_unit_stats.items():
        headers, rows = latency_rows(stats)
        if not header_written:
            writer.writerow(["unit"] + headers)
            header_written = True
        for row in rows:
            writer.writerow([label] + row)


def _write_events_csv(events: list[dict], out) -> None:
    """Dump raw events as ``unit,t,kind,payload`` rows.

    The payload cell is the event's kind-specific fields serialized as JSON
    (sorted keys) — it always contains commas and may contain quotes, so
    rows must go through ``csv.writer``, never a manual ``",".join``.
    """
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["unit", "t", "kind", "payload"])
    for ev in events:
        payload = {k: v for k, v in ev.items() if k not in ("unit", "t", "kind")}
        writer.writerow([
            ev.get("unit", "run"), ev["t"], ev["kind"],
            json.dumps(payload, sort_keys=True, default=str),
        ])


def _validate_chrome(path: str) -> int:
    from repro.obs import validate_chrome_trace

    doc = json.loads(Path(path).read_text())
    errors = validate_chrome_trace(doc)
    n_events = len(doc.get("traceEvents", [])) if isinstance(doc, dict) else 0
    if errors:
        print(f"{path}: INVALID ({len(errors)} error(s) in {n_events} events)")
        for err in errors[:20]:
            print(f"  {err}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        return 1
    print(f"{path}: OK ({n_events} trace events)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trace", nargs="?", metavar="TRACE_JSONL",
        help="JSONL lifecycle trace to summarize",
    )
    parser.add_argument(
        "--per-unit", action="store_true",
        help="print one table per simulation unit instead of one overall",
    )
    parser.add_argument(
        "--format", default="table", choices=("table", "csv"),
        help="output format (default: table); csv implies machine-readable "
             "output only (no event-count preamble)",
    )
    parser.add_argument(
        "--events", action="store_true",
        help="with --format csv: dump the raw events (unit,t,kind,payload) "
             "instead of the latency tables; payload is JSON, safely quoted",
    )
    parser.add_argument(
        "--validate-chrome", default=None, metavar="TRACE_JSON",
        help="validate a Chrome Trace JSON export instead of summarizing",
    )
    args = parser.parse_args(argv)

    if args.validate_chrome is not None:
        return _validate_chrome(args.validate_chrome)
    if args.trace is None:
        parser.error("a TRACE_JSONL path (or --validate-chrome) is required")

    from repro.metrics import format_latency_rows
    from repro.obs import derive_latency, read_jsonl

    events = read_jsonl(args.trace)
    if not events:
        print(f"{args.trace}: empty trace", file=sys.stderr)
        return 1

    if args.events:
        if args.format != "csv":
            parser.error("--events requires --format csv")
        _write_events_csv(events, sys.stdout)
        return 0

    if args.per_unit:
        units: dict[str, list] = {}
        for ev in events:
            units.setdefault(ev.get("unit", "run"), []).append(ev)
        per_unit_stats = {label: derive_latency(evs) for label, evs in units.items()}
    else:
        per_unit_stats = {"all": derive_latency(events)}

    if args.format == "csv":
        _write_csv(per_unit_stats, sys.stdout)
        return 0

    kinds = Counter(ev["kind"] for ev in events)
    print(f"{args.trace}: {len(events)} events")
    print("  " + ", ".join(f"{k}={n}" for k, n in sorted(kinds.items())))
    for label, stats in per_unit_stats.items():
        title = (f"[{label}]" if args.per_unit
                 else f"latency distributions ({len(stats['units'])} unit(s))")
        print("\n" + format_latency_rows(stats, title=title))
    return 0


if __name__ == "__main__":
    sys.exit(main())
