#!/usr/bin/env python
"""Measure the perf harness: serial vs parallel vs cached suite wall time.

Writes a JSON baseline (default ``BENCH_harness.json``) with three passes
over the experiment suite:

1. ``serial``    — workers=0, no cache (the legacy ``run_all`` behaviour)
2. ``parallel``  — N workers, cold cache (fan-out + store overhead)
3. ``cached``    — N workers, warm cache (every unit served from disk)

Usage::

    PYTHONPATH=src python scripts/bench_harness.py --scale bench
    PYTHONPATH=src python scripts/bench_harness.py --scale tiny --only table2,fig8
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import pickle
import platform
import sys
import tempfile
import time
from pathlib import Path


def _measure(runner, names, scale):
    from repro.experiments.registry import SPLIT_EXPERIMENTS  # noqa: F401 (import check)

    start = time.perf_counter()
    with contextlib.redirect_stdout(io.StringIO()):
        results = runner.run_many(names, scale)
    return time.perf_counter() - start, results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="bench")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker count (default: min(4, cores))",
    )
    parser.add_argument("--only", default=None, help="comma-separated experiment subset")
    parser.add_argument("--out", default="BENCH_harness.json")
    args = parser.parse_args(argv)

    from repro.experiments.registry import EXPERIMENTS
    from repro.perf import ParallelRunner, ResultCache

    names = list(EXPERIMENTS) if args.only is None else [n for n in args.only.split(",") if n]
    workers = args.workers if args.workers is not None else max(1, min(4, os.cpu_count() or 1))

    print(f"suite: {names}", file=sys.stderr)
    print(f"scale={args.scale} workers={workers}", file=sys.stderr)

    serial_s, serial_results = _measure(ParallelRunner(workers=0), names, args.scale)
    print(f"serial:   {serial_s:8.1f} s", file=sys.stderr)

    with tempfile.TemporaryDirectory() as cache_dir:
        runner = ParallelRunner(workers=workers, cache=ResultCache(cache_dir))
        parallel_s, parallel_results = _measure(runner, names, args.scale)
        executed = runner.executed_units
        print(f"parallel: {parallel_s:8.1f} s  ({executed} units)", file=sys.stderr)

        cached_s, cached_results = _measure(runner, names, args.scale)
        print(f"cached:   {cached_s:8.1f} s  ({runner.cached_units} hits)", file=sys.stderr)
        if runner.executed_units:
            print("WARNING: warm pass re-executed units", file=sys.stderr)

    identical = pickle.dumps(parallel_results) == pickle.dumps(serial_results) and (
        pickle.dumps(cached_results) == pickle.dumps(serial_results)
    )

    baseline = {
        "benchmark": "experiment-suite wall time (serial vs parallel vs cached)",
        "scale": args.scale,
        "experiments": names,
        "units": executed,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "serial_s": round(serial_s, 2),
        "parallel_s": round(parallel_s, 2),
        "cached_s": round(cached_s, 2),
        "parallel_speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "cached_fraction_of_cold": round(cached_s / parallel_s, 4) if parallel_s else None,
        "results_bit_identical": identical,
    }
    Path(args.out).write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
