#!/usr/bin/env python
"""Measure the perf harness: serial vs parallel vs cached suite wall time.

Writes a JSON baseline (default ``BENCH_harness.json``) with three passes
over the experiment suite plus a worker-count scaling curve:

1. ``serial``    — workers=0, no cache (the legacy ``run_all`` behaviour)
2. ``parallel``  — N workers, cold cache (fan-out + store overhead)
3. ``cached``    — N workers, warm cache (every unit served from disk)
4. ``scaling_curve`` — one cold-cache pass per worker count (default
   1/2/4), each on a fresh warm-reusable pool, with the per-pass
   setup-vs-compute split.

Every executed unit reports its pure simulation seconds (``compute_s``,
measured where the unit ran), so the JSON separates harness overhead
(process spawn, per-unit pickling, cache stores) from simulation work:
``overhead ≈ wall − compute/min(workers, units)``.  On a single-core host
the curve documents the honest ≤1× wall-clock result while the per-unit
overhead column still shows what the warm pool + initializer-shared spec
save per unit.

Usage::

    PYTHONPATH=src python scripts/bench_harness.py --scale bench
    PYTHONPATH=src python scripts/bench_harness.py --scale tiny --only table2,fig8
    PYTHONPATH=src python scripts/bench_harness.py --curve 1,2,4,8 --placement vector
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import pickle
import platform
import sys
import tempfile
import time
from pathlib import Path


def _measure(runner, names, scale):
    from repro.experiments.registry import SPLIT_EXPERIMENTS  # noqa: F401 (import check)

    start = time.perf_counter()
    with contextlib.redirect_stdout(io.StringIO()):
        results = runner.run_many(names, scale)
    return time.perf_counter() - start, results


def _pass_stats(runner, wall_s: float) -> dict:
    """Setup-vs-compute split for one measured pass.

    ``compute_s`` sums in-worker simulation spans; with ``k`` concurrent
    workers those spans overlap, so the amortized per-unit harness overhead
    is ``(wall − compute/k) / units`` with ``k = min(workers, units)``.
    """
    units = runner.executed_units
    k = max(1, min(runner.workers, units)) if runner.workers else 1
    overhead_s = wall_s - runner.compute_s / k
    return {
        "workers": runner.workers,
        "wall_s": round(wall_s, 2),
        "compute_s": round(runner.compute_s, 2),
        "executed_units": units,
        "cached_units": runner.cached_units,
        "overhead_s": round(overhead_s, 2),
        "per_unit_overhead_ms": round(1000.0 * overhead_s / units, 1) if units else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="bench")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker count (default: min(4, cores))",
    )
    parser.add_argument("--only", default=None, help="comma-separated experiment subset")
    parser.add_argument(
        "--curve", default="1,2,4", metavar="N,N,...",
        help="worker counts for the scaling curve (default: 1,2,4; "
             "empty string skips the curve)",
    )
    parser.add_argument(
        "--placement", default=None, choices=("scalar", "vector"),
        help="placement engine for every pass (default: process default)",
    )
    parser.add_argument("--out", default="BENCH_harness.json")
    args = parser.parse_args(argv)

    from repro.experiments.registry import EXPERIMENTS
    from repro.perf import ParallelRunner, ResultCache

    names = list(EXPERIMENTS) if args.only is None else [n for n in args.only.split(",") if n]
    workers = args.workers if args.workers is not None else max(1, min(4, os.cpu_count() or 1))
    curve = [int(n) for n in args.curve.split(",") if n] if args.curve else []

    print(f"suite: {names}", file=sys.stderr)
    print(f"scale={args.scale} workers={workers} curve={curve}", file=sys.stderr)

    serial = ParallelRunner(workers=0, placement_mode=args.placement)
    serial_s, serial_results = _measure(serial, names, args.scale)
    serial_stats = _pass_stats(serial, serial_s)
    print(f"serial:   {serial_s:8.1f} s", file=sys.stderr)
    serial_blob = pickle.dumps(serial_results)

    with tempfile.TemporaryDirectory() as cache_dir:
        with ParallelRunner(
            workers=workers, cache=ResultCache(cache_dir), placement_mode=args.placement
        ) as runner:
            parallel_s, parallel_results = _measure(runner, names, args.scale)
            parallel_stats = _pass_stats(runner, parallel_s)
            executed = parallel_stats["executed_units"]
            print(f"parallel: {parallel_s:8.1f} s  ({executed} units)", file=sys.stderr)

            cached_s, cached_results = _measure(runner, names, args.scale)
            print(f"cached:   {cached_s:8.1f} s  ({runner.cached_units} hits)", file=sys.stderr)
            if runner.executed_units:
                print("WARNING: warm pass re-executed units", file=sys.stderr)

    identical = pickle.dumps(parallel_results) == serial_blob and (
        pickle.dumps(cached_results) == serial_blob
    )

    scaling_curve = []
    for n in curve:
        with tempfile.TemporaryDirectory() as cache_dir:
            with ParallelRunner(
                workers=n, cache=ResultCache(cache_dir), placement_mode=args.placement
            ) as curve_runner:
                wall_s, curve_results = _measure(curve_runner, names, args.scale)
        point = _pass_stats(curve_runner, wall_s)
        point["speedup_vs_serial"] = round(serial_s / wall_s, 2) if wall_s else None
        identical = identical and pickle.dumps(curve_results) == serial_blob
        scaling_curve.append(point)
        print(
            f"curve[{n}]: {wall_s:8.1f} s  "
            f"({point['speedup_vs_serial']}x vs serial, "
            f"{point['per_unit_overhead_ms']} ms/unit overhead)",
            file=sys.stderr,
        )

    baseline = {
        "benchmark": "experiment-suite wall time (serial vs parallel vs cached)",
        "scale": args.scale,
        "experiments": names,
        "units": executed,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "placement": args.placement or "scalar",
        "serial_s": round(serial_s, 2),
        "parallel_s": round(parallel_s, 2),
        "cached_s": round(cached_s, 2),
        "parallel_speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "cached_fraction_of_cold": round(cached_s / parallel_s, 4) if parallel_s else None,
        "results_bit_identical": identical,
        "serial_pass": serial_stats,
        "parallel_pass": parallel_stats,
        "scaling_curve": scaling_curve,
        "timing_note": (
            "compute_s sums in-worker simulation spans; "
            "overhead_s = wall_s - compute_s / min(workers, units). "
            "On a 1-core host pool passes cannot beat serial wall time; "
            "per_unit_overhead_ms is the comparable column."
        ),
    }
    Path(args.out).write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
