#!/usr/bin/env python
"""Placement-engine microbenchmark: scalar vs vector F(t, w) across widths.

Algorithm 1's inner product is ``tasks × workers`` F(t, w) evaluations per
round.  This script isolates *just* the placement call — fixed worker
state, fixed ready set, no simulation around it — and times the scalar
engine against the vectorized one across cluster widths.  Narrow clusters
exercise the vector engine's profile-dedup python path; wide clusters
(>= ``broadcast_min_workers``, default 32) flip it onto the numpy
broadcast path, which is where the paper-scale 100–1000-worker clusters
live.  Every timed pair is also checked for decision-identical assignment
sequences (worker, score included), so a speedup can never hide a
behavior change.

Writes a JSON baseline (default ``BENCH_place.json``)::

    PYTHONPATH=src python scripts/bench_place.py
    PYTHONPATH=src python scripts/bench_place.py --widths 8,64 --repeats 2
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path


def _build_setup(n_workers: int, n_tasks: int, seed: int = 7):
    """A pre-loaded cluster plus a ready set sized to the width.

    Workers carry randomized APT / rate / memory state; jobs contribute a
    handful of stages whose tasks share per-stage profiles (the shape the
    profile-dedup path is built for) with a sprinkle of odd-sized tasks.
    """
    from repro.cluster import Cluster, ClusterSpec
    from repro.dataflow import DepType, OpGraph, ResourceType
    from repro.execution import Job, JobManager
    from repro.scheduler import EarliestJobFirst, Worker
    from repro.scheduler.placement import ReadyStage

    class _NullBackend:
        def on_tasks_ready(self, jm, tasks):
            pass

        def enqueue_monotask(self, jm, mt):
            pass

        def on_job_complete(self, jm):
            pass

    rng = random.Random(seed)
    cluster = Cluster(ClusterSpec.small(
        num_machines=n_workers, cores=4, core_rate_mbps=10.0))
    workers = [Worker(cluster, i, EarliestJobFirst()) for i in range(n_workers)]
    for w in workers:
        for r in (ResourceType.CPU, ResourceType.NETWORK, ResourceType.DISK):
            w.assigned_work[r] = rng.uniform(0.0, 8.0)
            w.rates[r].record(rng.uniform(5.0, 40.0), rng.uniform(0.5, 3.0))
        w.running[ResourceType.CPU] = rng.randrange(0, w.machine.spec.cores + 1)
        w.machine.reserve_memory(rng.uniform(0.0, 0.5) * w.machine.memory.capacity)

    stages = []
    n_jobs = 6
    per_job = max(2, n_tasks // n_jobs)
    for j in range(n_jobs):
        base = rng.uniform(4.0, 60.0)
        # mostly-uniform stage profiles with a few odd partitions
        sizes = [
            base if rng.random() < 0.9 else rng.uniform(1.0, 120.0)
            for _ in range(per_job)
        ]
        g = OpGraph(f"p{j}")
        src = g.create_data(per_job)
        g.set_input(src, sizes)
        msg = g.create_data(per_job)
        ser = g.create_op(ResourceType.CPU, "ser").read(src).create(msg)
        sh = g.create_op(ResourceType.NETWORK, "sh").read(msg).create(
            g.create_data(per_job))
        ser.to(sh, DepType.SYNC)
        job = Job(j, g, rng.uniform(0.0, 20.0), requested_memory_mb=1024.0)
        jm = JobManager(cluster.sim, cluster, job, _NullBackend())
        jm.start()
        by_stage = {}
        for t in jm.ready_tasks:
            by_stage.setdefault(t.stage.stage_id, []).append(t)
        stages.extend(ReadyStage(jm, ts[0].stage, ts) for ts in by_stage.values())
    return workers, stages


def _time_engine(placement, build, repeats: int):
    """Best-of-N timing of the bare ``place`` call.

    ``place`` consumes the ready set (the simulator rebuilds it every
    tick), so each repeat gets a freshly built — bit-identical, same-seed —
    setup outside the timed region.
    """
    from repro.scheduler import EarliestJobFirst

    policy = EarliestJobFirst(weight=0.1)
    best = float("inf")
    decisions = None
    n_tasks = 0
    for _ in range(repeats):
        workers, stages = build()
        n_tasks = sum(len(s.tasks) for s in stages)
        start = time.perf_counter()
        out = placement.place(stages, workers, 25.0, policy)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        got = [(a.jm.job.job_id, a.task.task_id, a.worker, a.score) for a in out]
        if decisions is None:
            decisions = got
        elif decisions != got:
            raise RuntimeError("same-seed repeats diverged")
    return best, decisions, n_tasks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--widths", default="8,32,128,512",
                        help="comma-separated worker counts")
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N per engine")
    parser.add_argument("--tasks-per-worker", type=float, default=4.0,
                        help="ready tasks per worker (default 4)")
    parser.add_argument("--out", default="BENCH_place.json")
    args = parser.parse_args(argv)

    from repro.scheduler import UrsaPlacement, VectorUrsaPlacement

    widths = [int(w) for w in args.widths.split(",") if w]
    rows = []
    identical = True
    print(f"  {'workers':>8} {'tasks':>7} {'scalar ms':>10} {'vector ms':>10} "
          f"{'speedup':>8}  path", file=sys.stderr)
    for n_workers in widths:
        n_tasks = int(n_workers * args.tasks_per_worker)

        def build():
            return _build_setup(n_workers, n_tasks)

        scalar_s, scalar_out, ready_tasks = _time_engine(
            UrsaPlacement(ept=0.3), build, args.repeats)
        vec = VectorUrsaPlacement(ept=0.3)
        vector_s, vector_out, _ = _time_engine(vec, build, args.repeats)
        same = scalar_out == vector_out
        identical = identical and same
        path = "broadcast" if n_workers >= vec.broadcast_min_workers else "python-loop"
        speedup = scalar_s / vector_s if vector_s else None
        rows.append({
            "workers": n_workers,
            "ready_tasks": ready_tasks,
            "scalar_ms": round(scalar_s * 1e3, 2),
            "vector_ms": round(vector_s * 1e3, 2),
            "speedup": round(speedup, 2) if speedup else None,
            "vector_path": path,
            "decisions_identical": same,
        })
        print(f"  {n_workers:>8} {rows[-1]['ready_tasks']:>7} "
              f"{rows[-1]['scalar_ms']:>10.2f} {rows[-1]['vector_ms']:>10.2f} "
              f"{rows[-1]['speedup']:>7.2f}x  {path}"
              + ("" if same else "  DECISIONS DIFFER"), file=sys.stderr)

    baseline = {
        "benchmark": "placement-only F(t,w) scoring, scalar vs vector engine",
        "repeats": args.repeats,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "widths": rows,
        "decisions_identical": identical,
    }
    Path(args.out).write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
