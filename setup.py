"""Legacy shim so `pip install -e .` / `python setup.py develop` work in
offline environments whose setuptools lacks the `wheel` package (the PEP 660
editable-wheel path needs it; the egg-link develop path does not)."""

from setuptools import setup

setup()
