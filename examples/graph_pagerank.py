#!/usr/bin/env python
"""Graph analytics on Ursa: PageRank and connected components via the
Pregel-like vertex-centric API (§4.1.2).

Each superstep compiles to (CPU message generation) → (network shuffle) →
(CPU apply); the vertex state stays resident, so iteration tasks are pinned
to the machines holding their partition — the in-memory graph-processing
pattern of §2 (Figs. 1c/1d).

    python examples/graph_pagerank.py
"""

from repro.api import (
    UrsaContext,
    connected_components_program,
    pagerank_program,
    run_pregel,
)
from repro.cluster import ClusterSpec
from repro.simcore import derive_rng


def ring_of_cliques(n_cliques=4, clique_size=6):
    """A small graph with clear structure: cliques joined in a ring."""
    adj: dict[int, list[int]] = {v: [] for v in range(n_cliques * clique_size)}
    for c in range(n_cliques):
        base = c * clique_size
        for i in range(clique_size):
            u = base + i
            for j in range(clique_size):
                if i != j:
                    adj[u].append(base + j)
        # bridge to the next clique
        nxt = ((c + 1) % n_cliques) * clique_size
        adj[base].append(nxt)
        adj[nxt].append(base)
    return adj


def main() -> None:
    adj = ring_of_cliques()
    n = len(adj)

    ctx = UrsaContext(ClusterSpec.small(num_machines=4, cores=8))
    ranks = run_pregel(
        ctx, {v: 1.0 for v in adj}, adj, pagerank_program(), supersteps=15, partitions=4
    )
    top = sorted(ranks.items(), key=lambda kv: -kv[1])[:5]
    print("PageRank (top 5 vertices):")
    for v, r in top:
        print(f"  vertex {v:3d}  rank {r:.4f}")

    # disconnect the ring into two halves and find components
    adj2 = ring_of_cliques()
    adj2[0].remove(6)
    adj2[6].remove(0)
    adj2[12].remove(18)
    adj2[18].remove(12)
    ctx2 = UrsaContext(ClusterSpec.small(num_machines=4, cores=8))
    labels = run_pregel(
        ctx2, {v: v for v in adj2}, adj2, connected_components_program(),
        supersteps=n, partitions=4,
    )
    components = sorted(set(labels.values()))
    print(f"\nconnected components after cutting two bridges: {components}")

    job = ctx.system.completed_jobs[-1]
    pinned = sum(1 for t in job.plan.tasks if t.locality is not None)
    print(f"\nPageRank job: {len(job.plan.tasks)} tasks, {pinned} locality-pinned, "
          f"JCT {job.jct:.2f} s (simulated)")


if __name__ == "__main__":
    main()
