#!/usr/bin/env python
"""OLAP on Ursa: TPC-H-style queries through the mini SQL engine.

Every query compiles onto Ursa's primitives (CPU ops, shuffles) and runs as
one job on the simulated cluster — the same data path the paper's TPC-H
workloads exercise (§5.1.1).

    python examples/sql_analytics.py
"""

from repro.api import UrsaContext
from repro.api.sql import (
    Catalog,
    SqlEngine,
    generate_tpch_tables,
    q1_pricing_summary,
    q3_shipping_priority,
    q6_forecast_revenue,
    q14_promo_effect,
)
from repro.cluster import ClusterSpec


def main() -> None:
    ctx = UrsaContext(ClusterSpec.small(num_machines=4, cores=8))
    tables = generate_tpch_tables(scale_rows=120)
    catalog = Catalog(ctx, default_partitions=6)
    for name, rows in tables.items():
        catalog.register(name, rows)
    engine = SqlEngine(catalog)

    print("Q6 (forecast revenue change):", round(q6_forecast_revenue(catalog), 2))
    print("Q14 (promo revenue %):       ", round(q14_promo_effect(catalog), 2))

    print("\nQ1 (pricing summary), first rows:")
    for row in q1_pricing_summary(catalog)[:3]:
        print("  ", {k: (round(v, 1) if isinstance(v, float) else v) for k, v in row.items()})

    print("\nQ3 (shipping priority), top 5 orders by revenue:")
    for row in q3_shipping_priority(catalog)[:5]:
        print(f"   order {row['o_orderkey']:4d}  revenue {row['revenue']:10.2f}")

    print("\nad-hoc SQL:")
    sql = (
        "SELECT n_name, count(*) AS customers FROM customer "
        "JOIN nation ON c_nationkey = n_nationkey "
        "GROUP BY n_name ORDER BY customers DESC LIMIT 5"
    )
    print(engine.explain(sql))
    for row in engine.sql(sql):
        print(f"   {row['n_name']:16s} {row['customers']}")

    print(f"\nsimulated time spent: {ctx.cluster.sim.now:.2f} s "
          f"across {len(ctx.system.completed_jobs)} jobs")


if __name__ == "__main__":
    main()
