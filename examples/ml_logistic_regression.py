#!/usr/bin/env python
"""Iterative ML on Ursa: logistic regression via the Dataset API.

Trains a tiny logistic-regression model with batch gradient descent: the
training partitions stay resident, each iteration broadcasts the weights,
computes partial gradients with real UDFs, and aggregates them through a
shuffle — the alternating compute/communicate pattern of §2 (Fig. 1a/1b).

    python examples/ml_logistic_regression.py
"""

import math

from repro.api import UrsaContext
from repro.cluster import ClusterSpec
from repro.simcore import derive_rng


def make_data(n=400, dim=4, seed=3):
    """Linearly separable-ish data with known true weights."""
    rng = derive_rng(seed, "lr_data")
    true_w = rng.normal(size=dim)
    xs, ys = [], []
    for _ in range(n):
        x = rng.normal(size=dim)
        logit = float(x @ true_w)
        y = 1 if logit + rng.normal(scale=0.3) > 0 else 0
        xs.append(tuple(float(v) for v in x))
        ys.append(y)
    return list(zip(xs, ys)), true_w


def sigmoid(z: float) -> float:
    if z < -30:
        return 0.0
    if z > 30:
        return 1.0
    return 1.0 / (1.0 + math.exp(-z))


def main() -> None:
    data, true_w = make_data()
    dim = len(true_w)
    ctx = UrsaContext(ClusterSpec.small(num_machines=4, cores=8))
    weights = [0.0] * dim
    lr = 0.5

    for it in range(8):
        w = ctx.broadcast(list(weights))

        def partial_grad(sample, w=w):
            x, y = sample
            pred = sigmoid(sum(wi * xi for wi, xi in zip(w.value, x)))
            err = pred - y
            return ("g", tuple(err * xi for xi in x))

        grads = (
            ctx.parallelize(data, partitions=8)
            .map(partial_grad)
            .reduce_by_key(
                lambda a, b: tuple(ai + bi for ai, bi in zip(a, b)), partitions=1
            )
            .collect()
        )
        total = grads[0][1]
        weights = [wi - lr * gi / len(data) for wi, gi in zip(weights, total)]
        cos = _cosine(weights, true_w)
        print(f"iter {it}: cosine(w, w*) = {cos:+.3f}  (sim t = {ctx.cluster.sim.now:7.2f} s)")

    acc = _accuracy(weights, data)
    print(f"\nfinal training accuracy: {acc:.1%} over {len(data)} samples")
    print(f"jobs run on the simulated cluster: {len(ctx.system.completed_jobs)}")


def _cosine(a, b):
    num = sum(x * y for x, y in zip(a, b))
    den = math.sqrt(sum(x * x for x in a)) * math.sqrt(sum(y * y for y in b))
    return num / den if den else 0.0


def _accuracy(w, data):
    right = 0
    for x, y in data:
        pred = 1 if sigmoid(sum(wi * xi for wi, xi in zip(w, x))) >= 0.5 else 0
        right += pred == y
    return right / len(data)


if __name__ == "__main__":
    main()
