#!/usr/bin/env python
"""The paper's headline claim, live: Ursa vs YARN+Spark on a contended
cluster, with utilization strips.

Runs the same TPC-H-shaped workload through Ursa (EJF and SRJF) and the
executor-model baseline, then prints makespan / avg JCT / SE / UE and
ASCII utilization traces — a miniature of Table 2 + Figure 4.

    python examples/scheduling_comparison.py
"""

from repro.cluster import Cluster, ClusterSpec
from repro.baselines import YarnSystem, spark_config
from repro.metrics import compute_metrics, format_metric_rows, multi_series_chart
from repro.scheduler import UrsaConfig, UrsaSystem
from repro.workloads import submit_workload, tpch_workload


def make_workload():
    return tpch_workload(
        n_jobs=10, scale=0.02, arrival_interval=0.6,
        max_parallelism=128, partition_mb=12.0, seed=7,
    )


def run(name, system):
    submit_workload(system, make_workload())
    system.run(max_events=50_000_000)
    assert system.all_done
    return compute_metrics(system)


def main() -> None:
    machine = ClusterSpec.paper_cluster().machine
    spec = ClusterSpec(num_machines=4, machine=machine)

    systems = {
        "ursa-ejf": UrsaSystem(Cluster(spec), UrsaConfig(policy="ejf")),
        "ursa-srjf": UrsaSystem(Cluster(spec), UrsaConfig(policy="srjf")),
        "y+s": YarnSystem(Cluster(spec), spark_config()),
    }
    metrics = {}
    for name, system in systems.items():
        metrics[name] = run(name, system)

    print(format_metric_rows(metrics, title="mini Table 2 (10 TPC-H jobs, 4 machines)"))

    print("\nmini Figure 4 — cluster CPU / network utilization (busy window):")
    for name, system in systems.items():
        end = system.makespan()
        cluster = system.cluster
        _g, cpu = cluster.utilization_timeseries("cpu_used", 0, 0.8 * end, dt=max(end / 60, 0.5))
        _g, net = cluster.utilization_timeseries("net_used", 0, 0.8 * end, dt=max(end / 60, 0.5))
        print(f"\n  {name} (makespan {metrics[name].makespan:.1f} s)")
        print(multi_series_chart({"[CPU]Totl%": cpu, "[NET]Recv%": net}))


if __name__ == "__main__":
    main()
