#!/usr/bin/env python
"""Quickstart: word count on a simulated Ursa cluster.

Builds a Spark-like dataset pipeline, runs it as a real job (the UDFs
actually execute; the cluster, scheduler and timing are simulated), and
prints both the answer and what the scheduler did.

    python examples/quickstart.py
"""

from repro.api import UrsaContext
from repro.cluster import ClusterSpec

TEXT = """
ursa schedules monotasks ursa allocates resources timely
monotasks use one resource each so the scheduler can overlap
cpu of one job with network of another job and keep the cluster busy
""".split()


def main() -> None:
    ctx = UrsaContext(ClusterSpec.small(num_machines=4, cores=8))

    counts = (
        ctx.parallelize(TEXT, partitions=8)
        .map(lambda word: (word, 1))
        .reduce_by_key(lambda a, b: a + b, partitions=4)
        .collect()
    )

    print("word counts:")
    for word, n in sorted(counts, key=lambda kv: (-kv[1], kv[0]))[:8]:
        print(f"  {word:12s} {n}")

    job = ctx.system.completed_jobs[-1]
    plan = job.plan
    print(f"\nscheduler view of the job:")
    print(f"  monotasks: {len(plan.monotasks)}  tasks: {len(plan.tasks)}  stages: {len(plan.stages)}")
    print(f"  simulated JCT: {job.jct:.3f} s on a "
          f"{ctx.cluster.num_machines}x{ctx.cluster.spec.machine.cores}-core cluster")
    by_type = {}
    for mt in plan.monotasks:
        by_type[mt.rtype.value] = by_type.get(mt.rtype.value, 0) + 1
    print(f"  monotasks by resource: {by_type}")


if __name__ == "__main__":
    main()
